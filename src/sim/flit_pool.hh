/**
 * @file
 * Flit storage pool and fixed-capacity flit FIFOs.
 *
 * The simulator's hot loop moves flits between source streams, channel
 * delay lines, router input FIFOs and sinks.  Storing Flit structs by
 * value in every queue made each hand-off a ~48-byte copy and each
 * queue a heap-churning deque of large elements.  Instead, every flit
 * lives in exactly one slot of a per-Network FlitPool for its whole
 * source-to-sink life; queues carry 4-byte FlitRef handles.
 *
 * The pool is a slab + LIFO freelist:
 *
 *   - alloc() pops the most recently freed slot (cache-warm) or grows
 *     the slab; after warm-up a network allocates nothing.
 *   - free() returns a slot; double-free and use-after-free are caught
 *     by an always-on liveness bitmap (pdr_assert).
 *   - Slot reuse is deterministic: the handle sequence depends only on
 *     the (deterministic) order of alloc/free calls, never on address
 *     layout, so pooled and unpooled simulations stay bit-identical.
 *
 * Partitioned stepping (src/par/) shards the *freelist*: each worker
 * allocs from and frees into its own LIFO, so the steady-state hot
 * path needs no synchronization at all (a slot freed into shard s is
 * only ever re-allocated by worker s; the cycle barrier orders the
 * cross-worker alloc-at-source / free-at-sink pair on each slot).
 * Because a flit allocated in one shard is freed into whichever shard
 * hosts its destination sink, free slots drift between shards; an
 * overfull shard spills a batch to a mutex-guarded global list and an
 * empty shard refills from it, which bounds the slab at the live
 * high-water mark plus a constant per shard.  Slab growth itself is
 * mutex-serialized and -- in sharded mode -- must stay within the
 * reserve() capacity, because other workers dereference slots
 * concurrently and a reallocation would invalidate them;
 * shardFreelists() takes the reservation that guarantees this.  Which
 * worker a flit's slot lands in depends on scheduling, but handles
 * never influence simulated behavior or statistics, so results stay
 * bit-identical for any worker count.
 *
 * FlitFifo is the router-input-buffer queue: capacity fixed at
 * construction (the buffer depth), a plain ring over contiguous
 * storage, no allocation after init().
 */

#ifndef PDR_SIM_FLIT_POOL_HH
#define PDR_SIM_FLIT_POOL_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "sim/flit.hh"

namespace pdr::sim {

/** Handle to a pooled flit (index into the owning FlitPool's slab). */
using FlitRef = std::uint32_t;

/** Invalid / empty flit handle. */
constexpr FlitRef NullFlit = ~FlitRef(0);

/** Slab allocator for the flits of one Network. */
class FlitPool
{
  public:
    FlitPool() { shards_.resize(1); }

    /** Pre-size the slab (optional; the pool grows on demand). */
    void reserve(std::size_t n)
    {
        slots_.reserve(n);
        alive_.reserve(n);
        shards_[0].freeList.reserve(n);
    }

    /**
     * Split the freelist into `n` single-owner shards and reserve
     * `slots` slab entries so sharded growth never reallocates (live
     * handles are dereferenced concurrently).  Existing free slots stay
     * in shard 0.  Idempotent for the same n.
     */
    void
    shardFreelists(int n, std::size_t slots)
    {
        pdr_assert(n >= 1);
        // Spill/refill headroom: each shard may idle up to a spill
        // batch of free slots while another shard grows the slab.
        slots += std::size_t(n) * (kSpillAt + kBatch);
        if (slots > slots_.capacity())
            reserve(slots);
        shards_.resize(std::size_t(n));
        for (auto &sh : shards_)
            sh.freeList.reserve(slots);
        globalFree_.reserve(slots);
    }

    /** Merge every shard's freelist back into shard 0 (serial mode). */
    void
    collapseFreelists()
    {
        for (std::size_t s = 1; s < shards_.size(); s++) {
            auto &from = shards_[s];
            shards_[0].freeList.insert(shards_[0].freeList.end(),
                                       from.freeList.begin(),
                                       from.freeList.end());
            shards_[0].live += from.live;
            from.freeList.clear();
            from.live = 0;
        }
        shards_[0].freeList.insert(shards_[0].freeList.end(),
                                   globalFree_.begin(),
                                   globalFree_.end());
        globalFree_.clear();
        shards_.resize(1);
    }

    int numShards() const { return int(shards_.size()); }

    /**
     * Acquire a slot from `shard`'s freelist (growing the slab when it
     * is empty).  The returned flit's fields are unspecified (callers
     * overwrite every field); the slot is marked live.
     */
    FlitRef
    alloc(int shard = 0)
    {
        Shard &sh = shards_[std::size_t(shard)];
        FlitRef ref;
        if (!sh.freeList.empty()) {
            ref = sh.freeList.back();
            sh.freeList.pop_back();
        } else {
            std::lock_guard<std::mutex> lock(growMutex_);
            if (!globalFree_.empty()) {
                // Refill a batch from the slots other shards spilled.
                std::size_t take =
                    std::min(kBatch, globalFree_.size());
                sh.freeList.insert(sh.freeList.end(),
                                   globalFree_.end() -
                                       std::ptrdiff_t(take),
                                   globalFree_.end());
                globalFree_.resize(globalFree_.size() - take);
                ref = sh.freeList.back();
                sh.freeList.pop_back();
            } else {
                // In sharded mode a reallocation would invalidate
                // slots other workers are reading; shardFreelists()
                // reserved enough for the worst-case live population
                // plus the per-shard spill headroom.  numSlots_ is
                // the concurrency-safe size mirror: growing mutates
                // only memory beyond every handed-out slot, so
                // concurrent get()s of existing refs stay clean.
                pdr_assert(shards_.size() == 1 ||
                           slots_.size() < slots_.capacity());
                ref = FlitRef(slots_.size());
                slots_.emplace_back();
                alive_.push_back(false);
                numSlots_.store(std::uint32_t(slots_.size()),
                                std::memory_order_relaxed);
            }
        }
        pdr_assert(!alive_[ref]);
        alive_[ref] = true;
        sh.live++;
        return ref;
    }

    /** Release a slot into `shard`'s freelist (its flit left the
     *  network at a sink). */
    void
    free(FlitRef ref, int shard = 0)
    {
        pdr_assert(ref < numSlots());
        pdr_assert(alive_[ref]);
        alive_[ref] = false;
        Shard &sh = shards_[std::size_t(shard)];
        sh.live--;
        sh.freeList.push_back(ref);
        if (shards_.size() > 1 && sh.freeList.size() > kSpillAt) {
            // Free slots drift toward the shards hosting popular
            // sinks; spill a batch so empty shards refill instead of
            // growing the slab forever.
            std::lock_guard<std::mutex> lock(growMutex_);
            globalFree_.insert(globalFree_.end(),
                               sh.freeList.end() -
                                   std::ptrdiff_t(kBatch),
                               sh.freeList.end());
            sh.freeList.resize(sh.freeList.size() - kBatch);
        }
    }

    Flit &
    get(FlitRef ref)
    {
        pdr_assert(ref < numSlots() && alive_[ref]);
        return slots_[ref];
    }

    const Flit &
    get(FlitRef ref) const
    {
        pdr_assert(ref < numSlots() && alive_[ref]);
        return slots_[ref];
    }

    /** Slot `ref` currently holds a live flit. */
    bool alive(FlitRef ref) const
    {
        return ref < numSlots() && alive_[ref];
    }

    /** Flits currently live (in some queue between source and sink). */
    std::size_t
    liveCount() const
    {
        long long n = 0;
        for (const auto &sh : shards_)
            n += sh.live;
        pdr_assert(n >= 0);
        return std::size_t(n);
    }

    /** Slots ever created (the allocation high-water mark). */
    std::size_t capacity() const { return numSlots(); }

  private:
    /**
     * Slab size via its atomic mirror: readable while another worker
     * grows the slab (vector::size() reads the same memory growth
     * writes).  Any ref a thread legitimately holds was published to
     * it via the cycle barrier, which also ordered the corresponding
     * numSlots_ store, so relaxed loads suffice.
     */
    std::uint32_t
    numSlots() const
    {
        return numSlots_.load(std::memory_order_relaxed);
    }
    /**
     * One single-owner freelist.  `live` is a signed delta (a slot
     * allocated in shard a and freed into shard b counts +1/-1); only
     * the sum is meaningful.
     */
    struct Shard
    {
        std::vector<FlitRef> freeList;  //!< LIFO for cache-warm reuse.
        long long live = 0;
    };

    /** Spill threshold / transfer batch for sharded freelists. */
    static constexpr std::size_t kSpillAt = 512;
    static constexpr std::size_t kBatch = 128;

    std::vector<Flit> slots_;
    std::vector<char> alive_;       //!< Liveness bitmap (1 byte/slot).
    std::atomic<std::uint32_t> numSlots_{0};    //!< == slots_.size().
    std::vector<Shard> shards_;     //!< >= 1 entries; [0] is serial.
    std::vector<FlitRef> globalFree_;   //!< Guarded by growMutex_.
    std::mutex growMutex_;          //!< Guards growth + globalFree_.
};

/** Fixed-capacity FIFO of flit handles (a router input buffer). */
class FlitFifo
{
  public:
    /** Set the capacity; clears the queue.  Allocate-once. */
    void
    init(int capacity)
    {
        pdr_assert(capacity >= 1);
        ring_.assign(std::size_t(capacity), NullFlit);
        head_ = 0;
        size_ = 0;
    }

    bool empty() const { return size_ == 0; }
    int size() const { return size_; }
    int capacity() const { return int(ring_.size()); }

    FlitRef
    front() const
    {
        pdr_assert(size_ > 0);
        return ring_[head_];
    }

    void
    push(FlitRef ref)
    {
        pdr_assert(size_ < int(ring_.size()));
        std::size_t tail = head_ + std::size_t(size_);
        if (tail >= ring_.size())
            tail -= ring_.size();
        ring_[tail] = ref;
        size_++;
    }

    FlitRef
    pop()
    {
        pdr_assert(size_ > 0);
        FlitRef ref = ring_[head_];
        head_++;
        if (head_ >= ring_.size())
            head_ = 0;
        size_--;
        return ref;
    }

    /** Visit every queued handle, front to back (read-only; used by
     *  the invariant auditor to enumerate buffered flits). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        std::size_t i = head_;
        for (int n = 0; n < size_; n++) {
            fn(ring_[i]);
            i++;
            if (i >= ring_.size())
                i = 0;
        }
    }

  private:
    std::vector<FlitRef> ring_;
    std::size_t head_ = 0;
    int size_ = 0;
};

} // namespace pdr::sim

#endif // PDR_SIM_FLIT_POOL_HH
