/**
 * @file
 * Flit storage pool and fixed-capacity flit FIFOs.
 *
 * The simulator's hot loop moves flits between source streams, channel
 * delay lines, router input FIFOs and sinks.  Storing Flit structs by
 * value in every queue made each hand-off a ~48-byte copy and each
 * queue a heap-churning deque of large elements.  Instead, every flit
 * lives in exactly one slot of a per-Network FlitPool for its whole
 * source-to-sink life; queues carry 4-byte FlitRef handles.
 *
 * The pool is a slab + LIFO freelist:
 *
 *   - alloc() pops the most recently freed slot (cache-warm) or grows
 *     the slab; after warm-up a network allocates nothing.
 *   - free() returns a slot; double-free and use-after-free are caught
 *     by an always-on liveness bitmap (pdr_assert).
 *   - Slot reuse is deterministic: the handle sequence depends only on
 *     the (deterministic) order of alloc/free calls, never on address
 *     layout, so pooled and unpooled simulations stay bit-identical.
 *
 * FlitFifo is the router-input-buffer queue: capacity fixed at
 * construction (the buffer depth), a plain ring over contiguous
 * storage, no allocation after init().
 */

#ifndef PDR_SIM_FLIT_POOL_HH
#define PDR_SIM_FLIT_POOL_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "sim/flit.hh"

namespace pdr::sim {

/** Handle to a pooled flit (index into the owning FlitPool's slab). */
using FlitRef = std::uint32_t;

/** Invalid / empty flit handle. */
constexpr FlitRef NullFlit = ~FlitRef(0);

/** Slab allocator for the flits of one Network. */
class FlitPool
{
  public:
    FlitPool() = default;

    /** Pre-size the slab (optional; the pool grows on demand). */
    void reserve(std::size_t n)
    {
        slots_.reserve(n);
        alive_.reserve(n);
        freeList_.reserve(n);
    }

    /**
     * Acquire a slot.  The returned flit's fields are unspecified
     * (callers overwrite every field); the slot is marked live.
     */
    FlitRef
    alloc()
    {
        FlitRef ref;
        if (!freeList_.empty()) {
            ref = freeList_.back();
            freeList_.pop_back();
        } else {
            ref = FlitRef(slots_.size());
            slots_.emplace_back();
            alive_.push_back(false);
        }
        pdr_assert(!alive_[ref]);
        alive_[ref] = true;
        live_++;
        return ref;
    }

    /** Release a slot (its flit left the network at a sink). */
    void
    free(FlitRef ref)
    {
        pdr_assert(ref < slots_.size());
        pdr_assert(alive_[ref]);
        alive_[ref] = false;
        live_--;
        freeList_.push_back(ref);
    }

    Flit &
    get(FlitRef ref)
    {
        pdr_assert(ref < slots_.size() && alive_[ref]);
        return slots_[ref];
    }

    const Flit &
    get(FlitRef ref) const
    {
        pdr_assert(ref < slots_.size() && alive_[ref]);
        return slots_[ref];
    }

    /** Slot `ref` currently holds a live flit. */
    bool alive(FlitRef ref) const
    {
        return ref < slots_.size() && alive_[ref];
    }

    /** Flits currently live (in some queue between source and sink). */
    std::size_t liveCount() const { return live_; }

    /** Slots ever created (the allocation high-water mark). */
    std::size_t capacity() const { return slots_.size(); }

  private:
    std::vector<Flit> slots_;
    std::vector<char> alive_;       //!< Liveness bitmap (1 byte/slot).
    std::vector<FlitRef> freeList_; //!< LIFO for cache-warm reuse.
    std::size_t live_ = 0;
};

/** Fixed-capacity FIFO of flit handles (a router input buffer). */
class FlitFifo
{
  public:
    /** Set the capacity; clears the queue.  Allocate-once. */
    void
    init(int capacity)
    {
        pdr_assert(capacity >= 1);
        ring_.assign(std::size_t(capacity), NullFlit);
        head_ = 0;
        size_ = 0;
    }

    bool empty() const { return size_ == 0; }
    int size() const { return size_; }
    int capacity() const { return int(ring_.size()); }

    FlitRef
    front() const
    {
        pdr_assert(size_ > 0);
        return ring_[head_];
    }

    void
    push(FlitRef ref)
    {
        pdr_assert(size_ < int(ring_.size()));
        std::size_t tail = head_ + std::size_t(size_);
        if (tail >= ring_.size())
            tail -= ring_.size();
        ring_[tail] = ref;
        size_++;
    }

    FlitRef
    pop()
    {
        pdr_assert(size_ > 0);
        FlitRef ref = ring_[head_];
        head_++;
        if (head_ >= ring_.size())
            head_ = 0;
        size_--;
        return ref;
    }

  private:
    std::vector<FlitRef> ring_;
    std::size_t head_ = 0;
    int size_ = 0;
};

} // namespace pdr::sim

#endif // PDR_SIM_FLIT_POOL_HH
