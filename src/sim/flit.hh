/**
 * @file
 * Flits, credits and packet descriptors.
 *
 * Packets are segmented into flits: one head (carrying the destination
 * used by the routing logic), body flits, and one tail (which releases
 * the resources the head acquired).  Single-flit packets are head+tail
 * at once.  The vc field mirrors the vcid carried in a flit's header: it
 * names the virtual channel of the *link the flit is currently on* and
 * is rewritten at each hop when the switch allocator forwards the flit
 * (Section 3.1).
 */

#ifndef PDR_SIM_FLIT_HH
#define PDR_SIM_FLIT_HH

#include "sim/types.hh"

namespace pdr::sim {

/** Flit type field. */
enum class FlitType : std::uint8_t
{
    Head,
    Body,
    Tail,
    HeadTail,   //!< Single-flit packet.
};

/** True for Head and HeadTail. */
inline bool isHead(FlitType t)
{
    return t == FlitType::Head || t == FlitType::HeadTail;
}

/** True for Tail and HeadTail. */
inline bool isTail(FlitType t)
{
    return t == FlitType::Tail || t == FlitType::HeadTail;
}

/** One flow-control digit. */
struct Flit
{
    PacketId packet = 0;
    FlitType type = FlitType::Head;
    int vc = 0;             //!< VC id on the current link.
    /** Deadlock-avoidance VC class (e.g. torus dateline: 0 before the
     *  dateline, 1 after).  Updated by the routing function as the
     *  packet progresses; always 0 on a plain mesh. */
    std::uint8_t vclass = 0;
    NodeId src = Invalid;
    NodeId dest = Invalid;
    /** Intermediate node of two-phase oblivious routing (Valiant);
     *  Invalid for single-phase routings.  Chosen at injection. */
    NodeId inter = Invalid;
    std::uint8_t seq = 0;   //!< Position within the packet (0-based).
    Cycle ctime = 0;        //!< Packet creation time (head's value used).
    bool measured = false;  //!< Belongs to the measurement sample space.

    // Per-hop bookkeeping (not part of the "wire" format).
    Cycle eligible = 0;     //!< Earliest tick for the next pipeline action.
};

/** A credit returned upstream when a flit leaves an input buffer. */
struct Credit
{
    int vc = 0;             //!< Which VC's buffer was freed.
};

const char *toString(FlitType t);

} // namespace pdr::sim

#endif // PDR_SIM_FLIT_HH
