/**
 * @file
 * Runtime invariant auditor: per-cycle cross-checks of the exactness
 * contract (docs/ARCHITECTURE.md, "Determinism invariants").
 *
 * The golden-CSV gates and the lockstep tests prove *that* a change
 * broke bit-exactness; the auditor exists to say *where*.  When
 * enabled (PDR_AUDIT=1 or sim.audit=true) the Network runs three
 * classes of checks and fails at the offending cycle with the
 * offending component named, instead of surfacing as a byte-diff ten
 * thousand cycles later:
 *
 *   - wake-table exactness [AUD-WAKE]: no component may sleep past a
 *     matured item on a channel it consumes.  This is the runtime dual
 *     of invariant 1 (schedule equivalence): a component whose wake
 *     entry lies in the future while an input is deliverable would
 *     have acted under forceTickAll but not under the skipping
 *     schedule -- a broken nextWake() or a missed Channel::watch.
 *   - credit conservation [AUD-CREDIT]: for every (link, VC), credits
 *     held upstream + credits maturing in the upstream pipeline +
 *     credits on the wire + flits buffered downstream + flits on the
 *     wire must equal the configured buffer depth, every cycle.
 *   - allocation-bitset consistency [AUD-BID]: every router's
 *     incremental RouteWait/Active bid bitsets and free output-VC
 *     words (the sparse sets the allocation phases and nextWake
 *     iterate) must equal a dense recompute from the per-VC pipeline
 *     state, every cycle.  A stale bit is the allocation-side dual of
 *     an AUD-WAKE violation: a VC that would bid under a dense scan
 *     but is skipped by the sparse one.
 *   - flit-pool leaks [AUD-LEAK]: every live pool slot must be
 *     reachable from some queue (channel or router FIFO).  Checked at
 *     teardown; a slot that is alive but unreachable was allocated
 *     and lost, which silently corrupts handle-reuse order (invariant
 *     4) on top of leaking.
 *
 * Failures throw sim::AuditError (tests assert on it; the CLI lets it
 * terminate with the diagnostic).  The auditor is observational: it
 * never mutates simulation state, so an audited run is bit-identical
 * to an unaudited one.  Checks run on the serial stepping path only
 * (Network::step()); partitioned phase state is torn between barriers
 * and is covered by the par lockstep tests instead.
 */

#ifndef PDR_SIM_AUDIT_HH
#define PDR_SIM_AUDIT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace pdr::sim {

class FlitPool;

/** A broken determinism invariant, caught at the offending cycle. */
class AuditError : public std::logic_error
{
  public:
    explicit AuditError(const std::string &what)
        : std::logic_error(what)
    {
    }
};

/**
 * Failure reporting + counters for the invariant checks.  The checks
 * themselves live with the state they inspect (net::Network walks its
 * channels and routers); the auditor provides the uniform "fail at
 * cycle C in component X" diagnostic and keeps the check census that
 * tests and the CLI report.
 */
class Auditor
{
  public:
    /** PDR_AUDIT is set to 1/true/yes/on in the environment. */
    static bool envEnabled();

    /**
     * Report a violated invariant and throw AuditError.  `check` is
     * the check id (e.g. "AUD-WAKE"), `who` names the component
     * ("router 12", "sink 3"), `detail` says what held and what was
     * expected.
     */
    [[noreturn]] void fail(Cycle at, const std::string &who,
                           const char *check,
                           const std::string &detail);

    /** Assert one invariant; count it and fail() when violated. */
    void
    require(bool ok, Cycle at, const std::string &who,
            const char *check, const std::string &detail)
    {
        checksRun_++;
        if (!ok)
            fail(at, who, check, detail);
    }

    /** Individual invariant evaluations since construction. */
    std::uint64_t checksRun() const { return checksRun_; }

    /** Batch-count `n` checks that passed (callers on per-cycle paths
     *  test cheaply and build the failure diagnostic only on the
     *  fail() path; this keeps their census without per-check string
     *  construction). */
    void addChecks(std::uint64_t n) { checksRun_ += n; }

    /**
     * [AUD-LEAK] Every slot the pool believes live must appear in
     * `reachable` (the refs collected from every queue).  Throws with
     * the leaked slot ids; also flags the reverse inconsistency (a
     * reachable ref the pool thinks is free -- a double free).
     */
    void checkPoolLeaks(const FlitPool &pool,
                        const std::vector<std::uint32_t> &reachable,
                        Cycle at, const std::string &who);

  private:
    std::uint64_t checksRun_ = 0;
};

} // namespace pdr::sim

#endif // PDR_SIM_AUDIT_HH
