#include "sim/audit.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "sim/flit_pool.hh"

namespace pdr::sim {

bool
Auditor::envEnabled()
{
    const char *env = std::getenv("PDR_AUDIT");
    if (!env)
        return false;
    return std::strcmp(env, "1") == 0 ||
           std::strcmp(env, "true") == 0 ||
           std::strcmp(env, "yes") == 0 || std::strcmp(env, "on") == 0;
}

void
Auditor::fail(Cycle at, const std::string &who, const char *check,
              const std::string &detail)
{
    throw AuditError(csprintf("[%s] cycle %llu, %s: %s", check,
                              static_cast<unsigned long long>(at),
                              who.c_str(), detail.c_str()));
}

void
Auditor::checkPoolLeaks(const FlitPool &pool,
                        const std::vector<std::uint32_t> &reachable,
                        Cycle at, const std::string &who)
{
    std::vector<char> seen(pool.capacity(), 0);
    for (FlitRef ref : reachable) {
        require(ref < pool.capacity(), at, who, "AUD-LEAK",
                csprintf("queued handle %u is outside the pool "
                         "(capacity %zu)",
                         ref, pool.capacity()));
        require(pool.alive(ref), at, who, "AUD-LEAK",
                csprintf("queued handle %u refers to a freed slot "
                         "(use after free)",
                         ref));
        require(!seen[ref], at, who, "AUD-LEAK",
                csprintf("handle %u is queued twice", ref));
        seen[ref] = 1;
    }
    std::string leaked;
    std::size_t nleaked = 0;
    for (FlitRef ref = 0; ref < pool.capacity(); ref++) {
        if (pool.alive(ref) && !seen[ref]) {
            nleaked++;
            if (nleaked <= 8)
                leaked += csprintf("%s%u", leaked.empty() ? "" : ", ",
                                   ref);
        }
    }
    require(nleaked == 0, at, who, "AUD-LEAK",
            csprintf("%zu live flit slot(s) unreachable from any "
                     "queue (leaked): slots [%s%s]; pool reports %zu "
                     "live, queues hold %zu",
                     nleaked, leaked.c_str(),
                     nleaked > 8 ? ", ..." : "", pool.liveCount(),
                     reachable.size()));
    // Count consistency: the pool's own live tally must match the
    // liveness bitmap the scan above walked.
    require(pool.liveCount() == reachable.size(), at, who, "AUD-LEAK",
            csprintf("pool live count %zu != reachable count %zu "
                     "(shard live-delta accounting drifted)",
                     pool.liveCount(), reachable.size()));
}

} // namespace pdr::sim
