/**
 * @file
 * Atomic modules and router critical paths (Section 3.1, Figure 4).
 *
 * An atomic module is a block that contains state dependent on its own
 * output (e.g. a matrix arbiter's priority state) and therefore should
 * not straddle a pipeline-stage boundary.  A router's critical path is an
 * ordered list of atomic modules, each with a latency t_i and an overhead
 * h_i produced by the specific router model (src/delay/equations).
 */

#ifndef PDR_DELAY_MODULES_HH
#define PDR_DELAY_MODULES_HH

#include <string>
#include <vector>

#include "common/units.hh"
#include "delay/equations.hh"

namespace pdr::delay {

/** The atomic modules appearing on router critical paths (Figure 4). */
enum class ModuleKind
{
    RouteDecode,    //!< Address decode + routing (black box, 20 tau4).
    SwitchArb,      //!< Wormhole switch arbiter (SB).
    VcAlloc,        //!< Virtual-channel allocator (VC).
    SwitchAlloc,    //!< VC-router switch allocator (SL).
    SpecCombined,   //!< Parallel VA + speculative SA + combination (CB).
    Crossbar,       //!< Crossbar traversal (XB).
};

/** Printable module name. */
const char *toString(ModuleKind k);

/** Delay estimate pair produced by the specific router model. */
struct DelayEstimate
{
    Tau latency;    //!< t_i.
    Tau overhead;   //!< h_i.

    Tau total() const { return latency + overhead; }
};

/** An atomic module instance on a critical path. */
struct AtomicModule
{
    ModuleKind kind;
    DelayEstimate delay;

    std::string name() const { return toString(kind); }
};

/** The flow-control methods whose routers the paper models. */
enum class RouterKind
{
    Wormhole,       //!< 3 modules: RC -> SB -> XB.
    VirtualChannel, //!< 4 modules: RC -> VC -> SL -> XB.
    SpecVirtualChannel, //!< 3 modules: RC -> (VC || SS -> CB) -> XB.
};

/** Printable router-kind name. */
const char *toString(RouterKind k);

/** Parameters of the delay model for one router. */
struct RouterParams
{
    RouterKind kind = RouterKind::Wormhole;
    int p = 5;      //!< Physical channels (crossbar ports).
    int w = 32;     //!< Phit / flit width in bits.
    int v = 1;      //!< Virtual channels per physical channel.
    RoutingRange range = RoutingRange::Rv;
    /** Overlap the non-spec-over-spec combination mux (CB) into the
     *  crossbar stage instead of charging it to the allocation stage
     *  (the fit the paper's Section-4 prose implies). */
    bool overlapCombination = false;
    /** Charge the crossbar a full typical cycle (20 tau4) instead of
     *  t_XB, the paper's Section-3.2 assumption that covers the wire
     *  delay its gate model omits.  This is why switch allocation and
     *  crossbar traversal never share a pipeline stage. */
    bool crossbarFullCycle = true;
};

/**
 * Build the ordered critical path of atomic modules for a router
 * (Figure 4 dependences), with delays evaluated from Table 1.
 */
std::vector<AtomicModule> criticalPath(const RouterParams &params);

} // namespace pdr::delay

#endif // PDR_DELAY_MODULES_HH
