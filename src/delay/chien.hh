/**
 * @file
 * Chien's router delay model (the Section-2 baseline).
 *
 * Chien [Hot Interconnects '93, IEEE TPDS '98] modeled wormhole and
 * virtual-channel routers with the single canonical architecture of
 * the paper's Figure 1: address decode and flow control (AD/FC), a
 * routing-arbitration block (RA) choosing among F candidate routes, a
 * crossbar with one port per *virtual* channel (P = p*v ports), and a
 * v:1 virtual-channel controller multiplexing VCs onto each physical
 * channel.  The whole critical path is assumed to fit in one clock
 * cycle, so cycle time equals router latency.
 *
 * The paper criticizes exactly these assumptions: no pipelining, and a
 * crossbar whose arbitration/traversal delay grows with p*v rather
 * than p.  This module reconstructs Chien's architecture with our
 * logical-effort equations (a documented substitution: Chien's own
 * 0.8 um constants are replaced by the same technology-independent
 * tau-model used everywhere else in this library) so the argument of
 * Section 2 can be reproduced quantitatively (bench_chien).
 */

#ifndef PDR_DELAY_CHIEN_HH
#define PDR_DELAY_CHIEN_HH

#include "common/units.hh"

namespace pdr::delay::chien {

/** Per-function delay breakdown of Chien's canonical router. */
struct Breakdown
{
    Tau decode;     //!< Address decode + flow control (AD/FC).
    Tau routing;    //!< Routing arbitration among F choices (RA).
    Tau arbitration;//!< Crossbar arbitration over P = p*v ports.
    Tau crossbar;   //!< Crossbar traversal, P = p*v ports.
    Tau vcControl;  //!< v:1 virtual-channel controller.

    /** Total = the router latency = the clock period in this model. */
    Tau total() const
    {
        return decode + routing + arbitration + crossbar + vcControl;
    }
};

/**
 * Evaluate Chien's model.
 *
 * @param p physical channels.
 * @param v virtual channels per physical channel.
 * @param w channel width in bits.
 * @param f routing freedom (output route choices; 1 = deterministic).
 */
Breakdown evaluate(int p, int v, int w, int f = 1);

/** Chien-style per-hop router latency (= cycle time), in tau. */
Tau routerLatency(int p, int v, int w, int f = 1);

} // namespace pdr::delay::chien

#endif // PDR_DELAY_CHIEN_HH
