#include "delay/chien.hh"

#include "common/logging.hh"
#include "common/math.hh"
#include "delay/equations.hh"

namespace pdr::delay::chien {

Breakdown
evaluate(int p, int v, int w, int f)
{
    pdr_assert(p >= 2 && v >= 1 && w >= 1 && f >= 1);
    Breakdown b;

    // AD/FC: header decode and flow-control check.  A few gate levels
    // plus a modest fan-out; fixed at 15 tau (3 tau4).
    b.decode = Tau(15.0);

    // RA: pick one of f candidate routes; a matrix arbitration among f
    // requesters (degenerates to a single qualification gate for
    // deterministic routing).
    b.routing = f > 1 ? Tau(21.5 * log4(f) + 14.0 + 1.0 / 12.0)
                      : Tau(5.0);

    // Crossbar arbitration: the crossbar has one port per virtual
    // channel, so the per-output arbiter sees p*v requestors (this is
    // the term the paper faults for growing with v).
    int pv = p * v;
    b.arbitration = tSB(pv) + hSB(pv);

    // Crossbar traversal across P = p*v ports.
    b.crossbar = tXB(pv, w);

    // VC controller: v:1 multiplexing of virtual channels onto the
    // physical wire, with its own arbitration state.
    b.vcControl = v > 1 ? Tau(21.5 * log4(v) + 14.0 + 1.0 / 12.0)
                        : Tau(5.0);

    return b;
}

Tau
routerLatency(int p, int v, int w, int f)
{
    return evaluate(p, v, w, f).total();
}

} // namespace pdr::delay::chien
