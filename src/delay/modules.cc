#include "delay/modules.hh"

#include "common/logging.hh"

namespace pdr::delay {

const char *
toString(ModuleKind k)
{
    switch (k) {
      case ModuleKind::RouteDecode: return "Route+Decode";
      case ModuleKind::SwitchArb: return "SW Arbitration";
      case ModuleKind::VcAlloc: return "VC Allocation";
      case ModuleKind::SwitchAlloc: return "SW Allocation";
      case ModuleKind::SpecCombined: return "VC&SW Allocation";
      case ModuleKind::Crossbar: return "Crossbar";
    }
    return "?";
}

const char *
toString(RouterKind k)
{
    switch (k) {
      case RouterKind::Wormhole: return "wormhole";
      case RouterKind::VirtualChannel: return "virtual-channel";
      case RouterKind::SpecVirtualChannel: return "spec virtual-channel";
    }
    return "?";
}

std::vector<AtomicModule>
criticalPath(const RouterParams &prm)
{
    std::vector<AtomicModule> path;
    path.push_back({ModuleKind::RouteDecode,
                    {tRouteDecode(), Tau(0.0)}});
    switch (prm.kind) {
      case RouterKind::Wormhole:
        path.push_back({ModuleKind::SwitchArb,
                        {tSB(prm.p), hSB(prm.p)}});
        break;
      case RouterKind::VirtualChannel:
        path.push_back({ModuleKind::VcAlloc,
                        {tVA(prm.range, prm.p, prm.v),
                         hVA(prm.range, prm.p, prm.v)}});
        path.push_back({ModuleKind::SwitchAlloc,
                        {tSL(prm.p, prm.v), hSL(prm.p, prm.v)}});
        break;
      case RouterKind::SpecVirtualChannel: {
        Tau t = prm.overlapCombination
                    ? tSpecCombinedOverlap(prm.range, prm.p, prm.v)
                    : tSpecCombined(prm.range, prm.p, prm.v);
        path.push_back({ModuleKind::SpecCombined,
                        {t, hSpecCombined(prm.range, prm.p, prm.v)}});
        break;
      }
    }
    Tau xb = prm.crossbarFullCycle ? typicalClock
                                   : tXB(prm.p, prm.w);
    path.push_back({ModuleKind::Crossbar, {xb, hXB(prm.p, prm.w)}});
    return path;
}

} // namespace pdr::delay
