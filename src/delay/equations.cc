#include "delay/equations.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math.hh"

namespace pdr::delay {

namespace {

void
checkPV(int p, int v)
{
    pdr_assert(p >= 2);
    pdr_assert(v >= 1);
}

} // namespace

const char *
toString(RoutingRange r)
{
    switch (r) {
      case RoutingRange::Rv: return "Rv";
      case RoutingRange::Rp: return "Rp";
      case RoutingRange::Rpv: return "Rpv";
    }
    return "?";
}

Tau
tSB(int p)
{
    pdr_assert(p >= 2);
    return Tau(21.5 * log4(p) + 14.0 + 1.0 / 12.0);
}

Tau
hSB(int)
{
    return Tau(9.0);
}

Tau
tXB(int p, int w)
{
    pdr_assert(p >= 2 && w >= 1);
    return Tau(9.0 * log8(double(w) * p) + 6.0 * log2d(p) + 6.0);
}

Tau
hXB(int, int)
{
    return Tau(0.0);
}

Tau
tVA(RoutingRange r, int p, int v)
{
    checkPV(p, v);
    double pv = double(p) * v;
    switch (r) {
      case RoutingRange::Rv:
        // A single p_i*v:1 arbiter per output VC.
        return Tau(21.5 * log4(pv) + 14.0 + 1.0 / 12.0);
      case RoutingRange::Rp:
        // v:1 arbiters in the first stage, p_i*v:1 in the second.
        return Tau(16.5 * log4(pv) + 16.5 * log4(v) + 20.0 + 5.0 / 6.0);
      case RoutingRange::Rpv:
        // Two stages of pv:1 arbiters.
        return Tau(33.0 * log4(pv) + 20.0 + 5.0 / 6.0);
    }
    pdr_panic("bad routing range");
}

Tau
hVA(RoutingRange, int, int)
{
    return Tau(9.0);
}

Tau
tSL(int p, int v)
{
    checkPV(p, v);
    return Tau(11.5 * log4(p) + 23.0 * log4(v) + 20.0 + 5.0 / 6.0);
}

Tau
hSL(int, int)
{
    return Tau(9.0);
}

Tau
tSS(int p, int v)
{
    checkPV(p, v);
    return Tau(18.0 * log4(p) + 23.0 * log4(v) + 24.0 + 5.0 / 6.0);
}

Tau
hSS(int, int)
{
    return Tau(0.0);
}

Tau
tCB(int p, int v)
{
    checkPV(p, v);
    return Tau(6.5 * log4(double(p) * v) + 5.0 + 1.0 / 3.0);
}

Tau
hCB(int, int)
{
    return Tau(0.0);
}

Tau
tSpecCombined(RoutingRange r, int p, int v)
{
    Tau va = tVA(r, p, v);
    Tau ss = tSS(p, v);
    return std::max(va, ss) + tCB(p, v);
}

Tau
tSpecCombinedOverlap(RoutingRange r, int p, int v)
{
    return std::max(tVA(r, p, v), tSS(p, v));
}

Tau
hSpecCombined(RoutingRange, int p, int v)
{
    // The arbiters inside VA/SS still need their priority update; the
    // combination logic itself adds none.
    return std::max(hVA(RoutingRange::Rv, p, v), hSS(p, v));
}

Tau
tRouteDecode()
{
    return typicalClock;
}

} // namespace pdr::delay
