/**
 * @file
 * The parametric delay equations of Table 1 (Peh & Dally, HPCA 2001).
 *
 * Every atomic module of the canonical wormhole / virtual-channel /
 * speculative virtual-channel router architectures has a latency t_i
 * (inputs presented -> outputs stable) and an overhead h_i (extra delay,
 * e.g. matrix-priority update, before the next inputs can be presented).
 * All values are in tau; 1 tau4 = 5 tau.
 *
 * Parameters: p = number of physical channels (router ports), w = phit /
 * flit width in bits, v = virtual channels per physical channel.
 *
 * The equations below were reverse-validated against the numeric example
 * column of Table 1 (p=5, w=32, v=2): every function reproduces the
 * published tau4 value exactly (see tests/delay/test_table1.cc).
 */

#ifndef PDR_DELAY_EQUATIONS_HH
#define PDR_DELAY_EQUATIONS_HH

#include "common/units.hh"

namespace pdr::delay {

/**
 * Range of the routing function feeding the virtual-channel allocator
 * (Section 3.2, Figure 8):
 *  - Rv:  returns a single candidate output virtual channel.
 *  - Rp:  returns the candidate VCs of a single physical channel (the
 *         most general range possible for a deterministic router).
 *  - Rpv: returns candidate VCs of any physical channel (most general).
 */
enum class RoutingRange { Rv, Rp, Rpv };

/** Printable name of a routing-function range ("Rv", "Rp", "Rpv"). */
const char *toString(RoutingRange r);

// -- Wormhole router ------------------------------------------------------

/** Switch arbiter latency: t_SB(p) = 21.5 log4 p + 14 1/12. */
Tau tSB(int p);
/** Switch arbiter overhead (priority-matrix update): 9 tau. */
Tau hSB(int p);

/** Crossbar traversal latency: t_XB(p,w) = 9 log8(w p) + 6 log2 p + 6. */
Tau tXB(int p, int w);
/** Crossbar overhead: none. */
Tau hXB(int p, int w);

// -- Virtual-channel router ----------------------------------------------

/** Virtual-channel allocator latency for the given routing range. */
Tau tVA(RoutingRange r, int p, int v);
/** Virtual-channel allocator overhead: 9 tau (matrix update). */
Tau hVA(RoutingRange r, int p, int v);

/** Switch allocator latency: t_SL(p,v) = 11.5 log4 p + 23 log4 v + 20 5/6. */
Tau tSL(int p, int v);
/** Switch allocator overhead: 9 tau. */
Tau hSL(int p, int v);

// -- Speculative virtual-channel router -----------------------------------

/** Speculative switch allocator: t_SS = 18 log4 p + 23 log4 v + 24 5/6. */
Tau tSS(int p, int v);
/** Speculative switch allocator overhead: none (runs beside VA). */
Tau hSS(int p, int v);

/** Non-spec-over-spec combination logic: t_CB = 6.5 log4(pv) + 5 1/3. */
Tau tCB(int p, int v);
/** Combination overhead: none. */
Tau hCB(int p, int v);

/**
 * Latency of the combined (parallel) VA + speculative-SA stage:
 * max(t_VA, t_SS) + t_CB.  Reproduces the published 14.6 / 14.6 / 18.3
 * tau4 for Rv / Rp / Rpv at p=5, v=2.
 */
Tau tSpecCombined(RoutingRange r, int p, int v);

/**
 * Combined-stage latency with the combination mux overlapped into the
 * following (crossbar) stage: max(t_VA, t_SS) only.  This is the fit
 * the paper's Section-4 prose uses when it states that a speculative
 * router with up to 16 VCs per physical channel stays within 3 pipeline
 * stages (with CB charged, 16 VCs computes to ~21.6 tau4 > 20).
 */
Tau tSpecCombinedOverlap(RoutingRange r, int p, int v);
/** Overhead of the combined stage: the arbiter priority update, 9 tau. */
Tau hSpecCombined(RoutingRange r, int p, int v);

/**
 * The paper assumes address decode + routing occupy one full typical
 * clock cycle of 20 tau4 (footnote 2); routing is treated as a black box.
 */
Tau tRouteDecode();

} // namespace pdr::delay

#endif // PDR_DELAY_EQUATIONS_HH
