/**
 * @file
 * Convenience summaries over a router's critical path: total
 * (unpipelined) latency and per-module breakdowns.  These correspond to
 * the "Chien-style" single-number router latency that Section 2 argues is
 * insufficient on its own, and feed the pipeline designer.
 */

#ifndef PDR_DELAY_ROUTER_DELAY_HH
#define PDR_DELAY_ROUTER_DELAY_HH

#include <vector>

#include "delay/modules.hh"

namespace pdr::delay {

/** Sum of t_i along the critical path (no overheads). */
Tau criticalPathLatency(const std::vector<AtomicModule> &path);

/** Sum of (t_i + h_i) along the critical path. */
Tau criticalPathTotal(const std::vector<AtomicModule> &path);

/** Largest single-module total (t_i + h_i); lower bound on cycle time if
 *  every atomic module must fit in one stage. */
Tau widestModule(const std::vector<AtomicModule> &path);

} // namespace pdr::delay

#endif // PDR_DELAY_ROUTER_DELAY_HH
