#include "delay/router_delay.hh"

#include <algorithm>

namespace pdr::delay {

Tau
criticalPathLatency(const std::vector<AtomicModule> &path)
{
    Tau t;
    for (const auto &m : path)
        t += m.delay.latency;
    return t;
}

Tau
criticalPathTotal(const std::vector<AtomicModule> &path)
{
    Tau t;
    for (const auto &m : path)
        t += m.delay.total();
    return t;
}

Tau
widestModule(const std::vector<AtomicModule> &path)
{
    Tau t;
    for (const auto &m : path)
        t = std::max(t, m.delay.total());
    return t;
}

} // namespace pdr::delay
