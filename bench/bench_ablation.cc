/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  A. Speculation priority: the paper's conservative prioritization of
 *     non-speculative requests vs an equal-priority variant.
 *  B. VC count at fixed total buffering (16 flits/port): the paper's
 *     Fig 14 vs 15 axis, extended to 1..8 VCs.
 *  C. Credit processing pipeline depth (0..3 extra cycles).
 *  D. Torus vs mesh topology (extension; paper future work).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace pdr;
using router::RouterModel;

namespace {

double
saturation(api::SimConfig cfg)
{
    cfg.net.warmup = 4000;
    cfg.net.samplePackets =
        std::min<std::uint64_t>(cfg.net.samplePackets, 8000);
    cfg.maxCycles = 120000;
    return api::findSaturation(cfg, 4.0, 0.02);
}

/** findSaturation parallelizes its own bracketing grid, so the
 *  configs run back to back. */
std::vector<double>
saturations(const std::vector<api::SimConfig> &cfgs)
{
    std::vector<double> out;
    out.reserve(cfgs.size());
    for (const auto &cfg : cfgs)
        out.push_back(saturation(cfg));
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablations",
                  "Design-choice sensitivity studies; saturation "
                  "throughput in fractions of\nuniform capacity.");

    std::printf("\nA. speculation priority (specVC 2vcsX4bufs):\n");
    {
        auto cfg = bench::routerConfig(RouterModel::SpecVirtualChannel,
                                       2, 4);
        auto equal_cfg = cfg;
        equal_cfg.net.router.specEqualPriority = true;
        auto nonspec = bench::routerConfig(RouterModel::VirtualChannel,
                                           2, 4);
        auto sats = saturations({cfg, equal_cfg, nonspec});
        std::printf("  prioritized (paper): %.2f | equal priority: "
                    "%.2f | no speculation: %.2f\n", sats[0], sats[1],
                    sats[2]);
        std::printf("  (paper claim: prioritization makes speculation"
                    " conservative -- never worse)\n");
    }

    std::printf("\nB. VC count at 16 flits of buffering per port "
                "(specVC):\n");
    {
        const std::vector<int> vcs{1, 2, 4, 8};
        std::vector<api::SimConfig> cfgs;
        for (int v : vcs) {
            cfgs.push_back(bench::routerConfig(
                RouterModel::SpecVirtualChannel, v, 16 / v));
        }
        auto sats = saturations(cfgs);
        for (std::size_t i = 0; i < vcs.size(); i++) {
            std::printf("  %d VCs x %2d bufs: saturation %.2f\n",
                        vcs[i], 16 / vcs[i], sats[i]);
        }
    }

    std::printf("\nC. extra credit-processing pipeline (specVC "
                "2vcsX4bufs):\n");
    {
        const std::vector<int> procs{0, 1, 2, 3};
        std::vector<api::SimConfig> cfgs;
        for (int proc : procs) {
            auto cfg = bench::routerConfig(
                RouterModel::SpecVirtualChannel, 2, 4);
            cfg.net.router.creditProcCycles = proc;
            cfgs.push_back(cfg);
        }
        auto sats = saturations(cfgs);
        for (std::size_t i = 0; i < procs.size(); i++) {
            std::printf("  +%d cycles: saturation %.2f\n", procs[i],
                        sats[i]);
        }
    }

    std::printf("\nD. torus vs mesh (specVC 2vcsX4bufs, dateline "
                "VCs, capacity-normalized):\n");
    {
        auto mesh = bench::routerConfig(RouterModel::SpecVirtualChannel,
                                        2, 4);
        auto torus = mesh;
        torus.net.topology = "torus";
        mesh.net.setOfferedFraction(0.1);
        torus.net.setOfferedFraction(0.1);
        auto zl = api::runSweep({{"mesh", mesh}, {"torus", torus}});
        zl.throwIfFailed();
        std::printf("  zero-load latency: mesh %.1f cy | torus %.1f "
                    "cy (shorter paths)\n",
                    zl.points[0].res.avgLatency,
                    zl.points[1].res.avgLatency);
        auto sats = saturations({mesh, torus});
        std::printf("  saturation:        mesh %.2f | torus %.2f "
                    "(of each topology's capacity)\n", sats[0],
                    sats[1]);
    }
    return 0;
}
