/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 * speculation priority, VC count at fixed buffering, credit-pipeline
 * depth, and torus vs mesh.
 *
 * The whole grid is declared in experiments/ablation.exp; this bench
 * loads and prints it (one latency column plus a measured saturation
 * knee per curve), and `pdr sweep --file experiments/ablation.exp`
 * runs the identical points.
 */

#include "bench_util.hh"

using namespace pdr;

int
main()
{
    bench::banner("Ablations",
                  "Design-choice sensitivity studies: speculation "
                  "priority, VC count at 16\nflits/port, credit "
                  "pipeline depth, torus vs mesh.  Compare the "
                  "per-curve\nsaturation knees.");
    bench::runAndPrintExperiment(bench::loadExperiment("ablation.exp"));
    return 0;
}
