/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  A. Speculation priority: the paper's conservative prioritization of
 *     non-speculative requests vs an equal-priority variant.
 *  B. VC count at fixed total buffering (16 flits/port): the paper's
 *     Fig 14 vs 15 axis, extended to 1..8 VCs.
 *  C. Credit processing pipeline depth (0..3 extra cycles).
 *  D. Torus vs mesh topology (extension; paper future work).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace pdr;
using router::RouterModel;

namespace {

double
saturation(api::SimConfig cfg)
{
    cfg.net.warmup = 4000;
    cfg.net.samplePackets =
        std::min<std::uint64_t>(cfg.net.samplePackets, 8000);
    cfg.maxCycles = 120000;
    return api::findSaturation(cfg, 4.0, 0.02);
}

} // namespace

int
main()
{
    bench::banner("Ablations",
                  "Design-choice sensitivity studies; saturation "
                  "throughput in fractions of\nuniform capacity.");

    std::printf("\nA. speculation priority (specVC 2vcsX4bufs):\n");
    {
        auto cfg = bench::routerConfig(RouterModel::SpecVirtualChannel,
                                       2, 4);
        double prio = saturation(cfg);
        cfg.net.router.specEqualPriority = true;
        double equal = saturation(cfg);
        auto nonspec = bench::routerConfig(RouterModel::VirtualChannel,
                                           2, 4);
        double plain = saturation(nonspec);
        std::printf("  prioritized (paper): %.2f | equal priority: "
                    "%.2f | no speculation: %.2f\n", prio, equal,
                    plain);
        std::printf("  (paper claim: prioritization makes speculation"
                    " conservative -- never worse)\n");
    }

    std::printf("\nB. VC count at 16 flits of buffering per port "
                "(specVC):\n");
    for (int v : {1, 2, 4, 8}) {
        auto cfg = bench::routerConfig(RouterModel::SpecVirtualChannel,
                                       v, 16 / v);
        std::printf("  %d VCs x %2d bufs: saturation %.2f\n", v,
                    16 / v, saturation(cfg));
        std::fflush(stdout);
    }

    std::printf("\nC. extra credit-processing pipeline (specVC "
                "2vcsX4bufs):\n");
    for (int proc : {0, 1, 2, 3}) {
        auto cfg = bench::routerConfig(RouterModel::SpecVirtualChannel,
                                       2, 4);
        cfg.net.router.creditProcCycles = proc;
        std::printf("  +%d cycles: saturation %.2f\n", proc,
                    saturation(cfg));
        std::fflush(stdout);
    }

    std::printf("\nD. torus vs mesh (specVC 2vcsX4bufs, dateline "
                "VCs, capacity-normalized):\n");
    {
        auto mesh = bench::routerConfig(RouterModel::SpecVirtualChannel,
                                        2, 4);
        auto torus = mesh;
        torus.net.torus = true;
        mesh.net.setOfferedFraction(0.1);
        torus.net.setOfferedFraction(0.1);
        auto rm = api::runSimulation(mesh);
        auto rt = api::runSimulation(torus);
        std::printf("  zero-load latency: mesh %.1f cy | torus %.1f "
                    "cy (shorter paths)\n", rm.avgLatency,
                    rt.avgLatency);
        std::printf("  saturation:        mesh %.2f | torus %.2f "
                    "(of each topology's capacity)\n",
                    saturation(mesh), saturation(torus));
    }
    return 0;
}
