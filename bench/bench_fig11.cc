/**
 * @file
 * Figure 11 reproduction: pipeline designs prescribed by the model at a
 * 20-tau4 clock, as ASCII bars with per-stage module occupancy.
 *
 * (a) non-speculative VC routers, Rpv allocator, p in {5,7},
 *     v in {2..32}, with the 3-stage wormhole pipeline for reference;
 * (b) speculative VC routers, Rv allocator.
 *
 * Both the strict EQ-1 fit and the prose-matching relaxed fit (CB mux
 * overlapped for the speculative router) are printed; DESIGN.md section
 * 4 discusses the marginal configurations where they differ.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "pipeline/designer.hh"

using namespace pdr;
using namespace pdr::delay;
using namespace pdr::pipeline;

namespace {

std::string
formatDesign(const std::string &label, const PipelineDesign &d)
{
    std::string out = csprintf("%-14s %d stages |", label.c_str(),
                               d.depth());
    for (const auto &stage : d.stages) {
        for (const auto &slice : stage.slices) {
            out += csprintf(" %s(%.0f%%)", toString(slice.kind),
                            100.0 * slice.occupied.value() /
                                d.clock.value());
            if (slice.continues)
                out += "...";
        }
        out += " |";
    }
    return out;
}

void
sweep(RouterKind kind, RoutingRange range, bool overlap_cb,
      FitPolicy policy)
{
    // The (p, v) design grid, evaluated in parallel on the sweep
    // engine's pool, printed in grid order.
    std::vector<std::pair<int, int>> grid;
    for (int p : {5, 7})
        for (int v : {2, 4, 8, 16, 32})
            grid.push_back({p, v});

    auto rows = exec::parallelMap(
        grid, [&](const std::pair<int, int> &pv) {
            auto [p, v] = pv;
            RouterParams prm{kind, p, 32, v, range};
            prm.overlapCombination = overlap_cb;
            auto d = designRouter(prm, typicalClock, policy);
            return formatDesign(csprintf("%2dvcs,%dpcs", v, p), d);
        });
    for (const auto &row : rows)
        std::printf("%s\n", row.c_str());
}

} // namespace

int
main()
{
    bench::banner("Figure 11 - Pipelines prescribed by the model",
                  "Per-node latency (pipeline stages) at clk = 20 tau4."
                  "  Paper: wormhole = 3\nstages; non-spec VC ~4 stages"
                  " for practical VC counts; spec VC = 3 stages\nup to "
                  "16 VCs per physical channel.");

    std::printf("\nreference wormhole router:\n");
    std::printf("%s\n",
                formatDesign("wormhole",
                             designRouter({RouterKind::Wormhole, 5, 32,
                                           1, RoutingRange::Rv}))
                    .c_str());

    std::printf("\n(a) non-speculative VC router, Rpv "
                "(strict EQ-1 fit):\n");
    sweep(RouterKind::VirtualChannel, RoutingRange::Rpv, false,
          FitPolicy::Strict);

    std::printf("\n(a') same, relaxed fit (t_i only):\n");
    sweep(RouterKind::VirtualChannel, RoutingRange::Rpv, false,
          FitPolicy::Relaxed);

    std::printf("\n(b) speculative VC router, Rv, CB overlapped "
                "(paper-prose fit, relaxed):\n");
    sweep(RouterKind::SpecVirtualChannel, RoutingRange::Rv, true,
          FitPolicy::Relaxed);

    std::printf("\n(b') same, CB charged + strict EQ-1 fit:\n");
    sweep(RouterKind::SpecVirtualChannel, RoutingRange::Rv, false,
          FitPolicy::Strict);
    return 0;
}
