/**
 * @file
 * Figure 11 reproduction: pipeline designs prescribed by the model at a
 * 20-tau4 clock, as ASCII bars with per-stage module occupancy.
 *
 * (a) non-speculative VC routers, Rpv allocator, p in {5,7},
 *     v in {2..32}, with the 3-stage wormhole pipeline for reference;
 * (b) speculative VC routers, Rv allocator.
 *
 * Both the strict EQ-1 fit and the prose-matching relaxed fit (CB mux
 * overlapped for the speculative router) are printed; DESIGN.md section
 * 4 discusses the marginal configurations where they differ.
 */

#include <cstdio>

#include "bench_util.hh"
#include "pipeline/designer.hh"

using namespace pdr;
using namespace pdr::delay;
using namespace pdr::pipeline;

namespace {

void
printDesign(const char *label, const PipelineDesign &d)
{
    std::printf("%-14s %d stages |", label, d.depth());
    for (const auto &stage : d.stages) {
        double frac = stage.occupancy().value() / d.clock.value();
        for (const auto &slice : stage.slices) {
            std::printf(" %s(%.0f%%)", toString(slice.kind),
                        100.0 * slice.occupied.value() /
                            d.clock.value());
            if (slice.continues)
                std::printf("...");
        }
        (void)frac;
        std::printf(" |");
    }
    std::printf("\n");
}

void
sweep(RouterKind kind, RoutingRange range, bool overlap_cb,
      FitPolicy policy)
{
    for (int p : {5, 7}) {
        for (int v : {2, 4, 8, 16, 32}) {
            RouterParams prm{kind, p, 32, v, range};
            prm.overlapCombination = overlap_cb;
            auto d = designRouter(prm, typicalClock, policy);
            char label[32];
            std::snprintf(label, sizeof label, "%2dvcs,%dpcs", v, p);
            printDesign(label, d);
        }
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 11 - Pipelines prescribed by the model",
                  "Per-node latency (pipeline stages) at clk = 20 tau4."
                  "  Paper: wormhole = 3\nstages; non-spec VC ~4 stages"
                  " for practical VC counts; spec VC = 3 stages\nup to "
                  "16 VCs per physical channel.");

    std::printf("\nreference wormhole router:\n");
    printDesign("wormhole",
                designRouter({RouterKind::Wormhole, 5, 32, 1,
                              RoutingRange::Rv}));

    std::printf("\n(a) non-speculative VC router, Rpv "
                "(strict EQ-1 fit):\n");
    sweep(RouterKind::VirtualChannel, RoutingRange::Rpv, false,
          FitPolicy::Strict);

    std::printf("\n(a') same, relaxed fit (t_i only):\n");
    sweep(RouterKind::VirtualChannel, RoutingRange::Rpv, false,
          FitPolicy::Relaxed);

    std::printf("\n(b) speculative VC router, Rv, CB overlapped "
                "(paper-prose fit, relaxed):\n");
    sweep(RouterKind::SpecVirtualChannel, RoutingRange::Rv, true,
          FitPolicy::Relaxed);

    std::printf("\n(b') same, CB charged + strict EQ-1 fit:\n");
    sweep(RouterKind::SpecVirtualChannel, RoutingRange::Rv, false,
          FitPolicy::Strict);
    return 0;
}
