/**
 * @file
 * Figure 15 reproduction: 16 buffers per input port organized as 4 VCs
 * x 4 buffers.
 *
 * Paper: with enough VCs/buffering to cover the credit loop, both VC
 * routers saturate together at ~70%; speculation no longer adds
 * throughput (but still removes the extra pipeline stage's latency).
 */

#include "bench_util.hh"

using namespace pdr;
using router::RouterModel;

int
main()
{
    bench::banner("Figure 15 - 16 buffers per input port, 4 VCs",
                  "WH (16 bufs), VC (4vcsX4bufs), specVC (4vcsX4bufs)."
                  "  Paper: both VC routers\nsaturate at ~0.70; "
                  "speculation's throughput edge vanishes.");
    bench::runAndPrintCurves({
        {"WH (16 bufs)",
         bench::routerConfig(RouterModel::Wormhole, 1, 16)},
        {"VC (4x4)",
         bench::routerConfig(RouterModel::VirtualChannel, 4, 4)},
        {"specVC (4x4)",
         bench::routerConfig(RouterModel::SpecVirtualChannel, 4, 4)},
    });
    return 0;
}
