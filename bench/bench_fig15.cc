/**
 * @file
 * Figure 15 reproduction: 16 buffers per input port organized as 4 VCs
 * x 4 buffers.
 *
 * The whole scenario is data: experiments/fig15.exp declares the base
 * config, the load grid and the three curves; this bench only loads
 * and prints it.  `pdr sweep --file experiments/fig15.exp` runs the
 * identical grid.
 *
 * Paper: with enough VCs/buffering to cover the credit loop, both VC
 * routers saturate together at ~70%; speculation no longer adds
 * throughput (but still removes the extra pipeline stage's latency).
 */

#include "bench_util.hh"

using namespace pdr;

int
main()
{
    bench::banner("Figure 15 - 16 buffers per input port, 4 VCs",
                  "WH (16 bufs), VC (4vcsX4bufs), specVC (4vcsX4bufs)."
                  "  Paper: both VC routers\nsaturate at ~0.70; "
                  "speculation's throughput edge vanishes.");
    bench::runAndPrintExperiment(bench::loadExperiment("fig15.exp"));
    return 0;
}
