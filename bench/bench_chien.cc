/**
 * @file
 * Section-2 reproduction: Chien's single-cycle, per-VC-crossbar-port
 * router model vs the paper's pipelined shared-port model.
 *
 * The scenario -- router shape and the VC-count axis -- is declared in
 * experiments/chien.exp; this bench evaluates both analytical delay
 * models at each declared point.  Prints, as a function of the VC
 * count: Chien's router latency (which is also his cycle time), the
 * Peh-Dally pipeline at a fixed 20-tau4 clock, and the implied per-hop
 * latency and channel-bandwidth ratios -- the quantitative version of
 * the paper's related-work critique.
 */

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/params.hh"
#include "bench_util.hh"
#include "common/logging.hh"
#include "delay/chien.hh"
#include "exec/thread_pool.hh"
#include "pipeline/designer.hh"

using namespace pdr;
using namespace pdr::delay;

int
main()
{
    bench::banner("Section 2 baseline - Chien's model vs the "
                  "pipelined model",
                  "Chien: one cycle per hop, cycle = full router "
                  "latency, crossbar port per VC.\nPeh-Dally: fixed "
                  "20-tau4 cycle, pipelined, crossbar port per "
                  "physical channel.");

    // The router shape and VC axis come from the experiment file; the
    // phit width is a delay-model constant (32-bit phits, Section 2).
    auto exp = api::Experiment::load(
        bench::experimentFile("chien.exp"));
    const int p = std::stoi(
        api::params::get(exp.base, "router.num_ports"));
    std::vector<int> vcs;
    for (const auto &axis : exp.axes) {
        if (axis.key == "router.num_vcs")
            for (const auto &v : axis.values)
                vcs.push_back(std::stoi(v));
    }
    if (vcs.empty())
        throw std::runtime_error(
            "chien.exp: expected a sweep.router.num_vcs axis");
    const int w = 32;

    std::printf("%-6s %14s %20s %16s %14s\n", "v", "Chien cyc=lat",
                "PD stages@20tau4", "per-hop ratio", "bandwidth x");

    // Evaluate the v-axis on the sweep engine's pool, print in order.
    auto rows = exec::parallelMap(vcs, [&](int v) {
        double chien_lat = chien::routerLatency(p, v, w).inTau4();

        pipeline::PipelineDesign d;
        if (v == 1) {
            d = pipeline::designRouter(
                {RouterKind::Wormhole, p, w, 1, RoutingRange::Rv});
        } else {
            RouterParams prm{RouterKind::SpecVirtualChannel, p, w, v,
                             RoutingRange::Rv};
            prm.overlapCombination = true;
            d = pipeline::designRouter(prm, typicalClock,
                                       pipeline::FitPolicy::Relaxed);
        }
        double pd_lat = 20.0 * d.depth();

        return csprintf("%-6d %11.1f t4 %13d stages %15.2f %13.2fx",
                        v, chien_lat, d.depth(), chien_lat / pd_lat,
                        chien_lat / 20.0);
    });
    for (const auto &row : rows)
        std::printf("%s\n", row.c_str());
    std::printf("\nper-hop ratio < 1 would favor Chien's unpipelined "
                "router; bandwidth x is how\nmany times faster the "
                "pipelined router clocks its channels (flits/s per "
                "wire).\nChien's model charges every VC a crossbar "
                "port, so its latency explodes with\nv while the "
                "shared-port pipelined router stays at 3 stages "
                "(Section 2).\n");
    return 0;
}
