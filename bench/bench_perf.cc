/**
 * @file
 * Simulator performance benchmarks (google-benchmark): arbiter and
 * allocator primitives, router ticks, whole-network cycles/sec, and
 * the parallel sweep engine (serial vs thread-pool execution of an
 * offered-load grid).
 */

#include <benchmark/benchmark.h>

#include "api/simulation.hh"
#include "arb/matrix_arbiter.hh"
#include "arb/switch_allocator.hh"
#include "arb/vc_allocator.hh"
#include "common/rng.hh"
#include "exec/sweep.hh"

using namespace pdr;

static void
BM_MatrixArbiter(benchmark::State &state)
{
    int n = int(state.range(0));
    arb::MatrixArbiter a(n);
    Rng rng(1);
    arb::ReqRow req(n);
    for (int i = 0; i < n; i++)
        req[i] = rng.bernoulli(0.5);
    for (auto _ : state) {
        int w = a.arbitrate(req);
        a.update(w);
        benchmark::DoNotOptimize(w);
    }
}
BENCHMARK(BM_MatrixArbiter)->Arg(5)->Arg(10)->Arg(20);

static void
BM_SeparableSwitchAllocator(benchmark::State &state)
{
    int v = int(state.range(0));
    arb::SeparableSwitchAllocator alloc(5, v);
    Rng rng(2);
    std::vector<arb::SaRequest> reqs;
    for (int in = 0; in < 5; in++)
        for (int vc = 0; vc < v; vc++)
            if (rng.bernoulli(0.4))
                reqs.push_back({in, vc, int(rng.range(5)), false});
    for (auto _ : state) {
        auto g = alloc.allocate(reqs);
        benchmark::DoNotOptimize(g);
    }
}
BENCHMARK(BM_SeparableSwitchAllocator)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

static void
BM_SpeculativeSwitchAllocator(benchmark::State &state)
{
    int v = int(state.range(0));
    arb::SpeculativeSwitchAllocator alloc(5, v);
    Rng rng(3);
    std::vector<arb::SaRequest> reqs;
    for (int in = 0; in < 5; in++)
        for (int vc = 0; vc < v; vc++)
            if (rng.bernoulli(0.4))
                reqs.push_back({in, vc, int(rng.range(5)),
                                rng.bernoulli(0.5)});
    for (auto _ : state) {
        auto g = alloc.allocate(reqs);
        benchmark::DoNotOptimize(g);
    }
}
BENCHMARK(BM_SpeculativeSwitchAllocator)->Arg(2)->Arg(4);

static void
BM_VcAllocator(benchmark::State &state)
{
    int v = int(state.range(0));
    arb::VcAllocator alloc(5, v);
    Rng rng(4);
    std::vector<arb::VaRequest> reqs;
    for (int in = 0; in < 5; in++)
        for (int vc = 0; vc < v; vc++)
            if (rng.bernoulli(0.3))
                reqs.push_back({in, vc, int(rng.range(5))});
    auto free_fn = [](int, int) { return true; };
    for (auto _ : state) {
        auto g = alloc.allocate(reqs, free_fn);
        benchmark::DoNotOptimize(g);
    }
}
BENCHMARK(BM_VcAllocator)->Arg(2)->Arg(4)->Arg(8);

static void
BM_NetworkCycle(benchmark::State &state)
{
    net::NetworkConfig cfg;
    cfg.k = 8;
    cfg.router.model = router::RouterModel(state.range(0));
    cfg.router.numVcs =
        cfg.router.model == router::RouterModel::Wormhole ? 1 : 2;
    cfg.router.bufDepth = 8;
    cfg.warmup = 0;
    cfg.samplePackets = 1u << 30;
    cfg.setOfferedFraction(0.4);
    net::Network n(cfg);
    n.run(2000);    // Warm the network into steady state.
    for (auto _ : state)
        n.step();
    state.SetItemsProcessed(state.iterations() * 64);   // Router-ticks.
}
BENCHMARK(BM_NetworkCycle)
    ->Arg(int(router::RouterModel::Wormhole))
    ->Arg(int(router::RouterModel::VirtualChannel))
    ->Arg(int(router::RouterModel::SpecVirtualChannel));

/**
 * The full-network scenarios BENCH_core.json tracks (see
 * tools/bench_core.cc): a specVC 8x8 mesh at a fixed fraction of
 * capacity.  Arg = offered load in percent.  The low-load point (10%)
 * is where activity-driven ticking pays -- most of every
 * latency-throughput curve runs there -- and the 90% point guards the
 * saturated regime against scheduling overhead.
 */
static void
BM_NetworkLoadPoint(benchmark::State &state)
{
    net::NetworkConfig cfg;
    cfg.k = 8;
    cfg.router.model = router::RouterModel::SpecVirtualChannel;
    cfg.router.numVcs = 2;
    cfg.router.bufDepth = 4;
    cfg.warmup = 0;
    cfg.samplePackets = 1u << 30;
    cfg.setOfferedFraction(state.range(0) / 100.0);
    net::Network n(cfg);
    n.run(2000);    // Warm the network into steady state.
    for (auto _ : state)
        n.step();
    state.SetItemsProcessed(state.iterations());    // Network cycles.
}
BENCHMARK(BM_NetworkLoadPoint)->Arg(10)->Arg(50)->Arg(90);

static void
BM_FullSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        api::SimConfig cfg;
        cfg.net.router.model = router::RouterModel::SpecVirtualChannel;
        cfg.net.router.numVcs = 2;
        cfg.net.router.bufDepth = 4;
        cfg.net.warmup = 500;
        cfg.net.samplePackets = 1000;
        cfg.net.setOfferedFraction(0.3);
        auto res = api::runSimulation(cfg);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_FullSimulation)->Unit(benchmark::kMillisecond);

/**
 * The figure-bench workload shape: a latency-throughput grid of small
 * simulations fanned over the sweep engine's pool.  Arg = thread
 * count (0 = PDR_THREADS / hardware concurrency); compare Arg(1) vs
 * higher counts for the parallel speedup.
 */
static void
BM_SweepLoadGrid(benchmark::State &state)
{
    api::SimConfig base;
    base.net.router.model = router::RouterModel::SpecVirtualChannel;
    base.net.router.numVcs = 2;
    base.net.router.bufDepth = 4;
    base.net.warmup = 500;
    base.net.samplePackets = 1000;

    auto points = exec::SweepBuilder(base)
                      .loads({0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.1, 0.2,
                              0.3, 0.4, 0.5, 0.6})
                      .build();

    exec::SweepOptions opts;
    opts.threads = int(state.range(0));
    exec::SweepRunner runner(opts);
    for (auto _ : state) {
        auto results = runner.run(points);
        if (results.failures() != 0)
            state.SkipWithError("sweep point failed");
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_SweepLoadGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
