#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#ifndef PDR_EXPERIMENTS_DIR
#define PDR_EXPERIMENTS_DIR "experiments"
#endif

namespace pdr::bench {

namespace {

bool
fastMode()
{
    const char *env = std::getenv("PDR_FAST");
    return env && env[0] == '1';
}

/**
 * Print the latency table for a loads x curves sweep: one row per
 * offered load, one column per curve, plus the measured saturation
 * knees and the wall-clock summary.  `results` must be loads-major
 * (point index = row * #curves + curve).
 */
void
printCurveTable(const std::vector<double> &loads,
                const std::vector<std::string> &labels,
                const exec::SweepResults &results)
{
    std::printf("%-8s", "load");
    for (const auto &label : labels)
        std::printf(" %16s", label.c_str());
    std::printf("\n");
    std::printf("%-8s", "");
    for (std::size_t i = 0; i < labels.size(); i++)
        std::printf(" %16s", "latency (cyc)");
    std::printf("\n");

    std::vector<double> knee(labels.size(), 0.0);
    std::vector<double> zero_load(labels.size(), 0.0);
    std::vector<bool> saturated(labels.size(), false);

    bool first_row = true;
    for (std::size_t row = 0; row < loads.size(); row++) {
        std::printf("%-8.2f", loads[row]);
        for (std::size_t i = 0; i < labels.size(); i++) {
            const auto &res =
                results.points[row * labels.size() + i].res;
            if (first_row)
                zero_load[i] = res.avgLatency;
            // Saturation: the sample failed to drain, accepted traffic
            // lags offered, or latency left the flat region (4x the
            // lowest-load latency -- the knee of the paper's figures).
            bool sat = res.saturated() ||
                       res.avgLatency > 4.0 * zero_load[i];
            if (sat) {
                std::printf(" %11.1f sat*", res.avgLatency);
                saturated[i] = true;
            } else {
                std::printf(" %16.1f", res.avgLatency);
                if (!saturated[i])
                    knee[i] = loads[row];
            }
        }
        std::printf("\n");
        std::fflush(stdout);
        first_row = false;
    }

    std::printf("\nmeasured saturation (last load on the grid with "
                "latency < 4x zero-load):\n");
    for (std::size_t i = 0; i < labels.size(); i++)
        std::printf("  %-20s ~%.2f of capacity "
                    "(zero-load %.1f cycles)\n",
                    labels[i].c_str(), knee[i], zero_load[i]);
    std::printf("(sat* = latency blew past 4x zero-load or the sample"
                " failed to drain;\n latency shown is of received "
                "packets only and is unbounded past saturation)\n");
    std::printf("sweep: %zu points on %d threads in %.1f s "
                "(PDR_THREADS to change)\n", results.points.size(),
                results.threads, results.wallMs / 1000.0);
    maybeExportCsv(results);
}

} // namespace

void
banner(const std::string &title, const std::string &what)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==============================================="
                "=============================\n");
}

std::vector<double>
loadGrid()
{
    if (fastMode())
        return {0.1, 0.3, 0.5, 0.7};
    return {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45,
            0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8};
}

api::SimConfig
baseConfig()
{
    api::SimConfig cfg;
    cfg.net.k = 8;
    cfg.net.packetLength = 5;
    cfg.net.warmup = 10000;
    cfg.net.samplePackets = fastMode() ? 3000 : 30000;
    cfg.maxCycles = 150000;
    cfg.applyEnvDefaults();
    return cfg;
}

api::SimConfig
routerConfig(router::RouterModel model, int vcs, int buf,
             bool single_cycle)
{
    api::SimConfig cfg = baseConfig();
    cfg.net.router.model = model;
    cfg.net.router.singleCycle = single_cycle;
    cfg.net.router.numVcs = vcs;
    cfg.net.router.bufDepth = buf;
    return cfg;
}

void
maybeExportCsv(const exec::SweepResults &results)
{
    const char *path = std::getenv("PDR_SWEEP_CSV");
    if (!path || !path[0])
        return;
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write PDR_SWEEP_CSV=%s\n", path);
        return;
    }
    results.toTable().writeCsv(out);
    std::printf("(raw sweep results written to %s)\n", path);
}

void
runAndPrintCurves(const std::vector<Curve> &curves)
{
    // One sweep point per (load, curve) pair, loads-major so the
    // results can be consumed row by row below.
    auto loads = loadGrid();
    std::vector<exec::SweepPoint> points;
    points.reserve(loads.size() * curves.size());
    for (double f : loads) {
        for (const auto &c : curves) {
            auto cfg = c.cfg;
            cfg.net.setOfferedFraction(f);
            points.push_back({c.label, cfg});
        }
    }

    auto results = api::runSweep(points);
    results.throwIfFailed();

    std::vector<std::string> labels;
    for (const auto &c : curves)
        labels.push_back(c.label);
    printCurveTable(loads, labels, results);
}

std::string
experimentFile(const std::string &name)
{
    const char *dir = std::getenv("PDR_EXPERIMENTS_DIR");
    std::string base = dir && dir[0] ? dir : PDR_EXPERIMENTS_DIR;
    return base + "/" + name;
}

api::Experiment
loadExperiment(const std::string &name)
{
    auto exp = api::Experiment::load(experimentFile(name));
    exp.applyEnv();
    return exp;
}

void
runAndPrintExperiment(const api::Experiment &exp)
{
    if (exp.axes.size() != 1 ||
        exp.axes[0].key != api::Experiment::kLoadsKey) {
        throw std::invalid_argument(
            "runAndPrintExperiment needs exactly one sweep.loads axis");
    }

    std::vector<double> loads;
    for (const auto &v : exp.axes[0].values)
        loads.push_back(std::strtod(v.c_str(), nullptr));
    std::vector<std::string> labels;
    for (const auto &c : exp.curves)
        labels.push_back(c.label);
    if (labels.empty())
        labels.push_back("");

    auto results = api::runSweep(exp.points());
    results.throwIfFailed();
    printCurveTable(loads, labels, results);
}

} // namespace pdr::bench
