/**
 * @file
 * Table 1 reproduction: parameterized delay equations evaluated at the
 * paper's example point (p=5, w=32, v=2, clk=20 tau4), printed next to
 * the published model and Synopsys columns, plus the logical-effort
 * fundamentals (EQ 3) and the gate-level circuit reconstructions.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "delay/equations.hh"
#include "exec/thread_pool.hh"
#include "le/circuits.hh"

using namespace pdr;
using namespace pdr::delay;

namespace {

/** Jobs producing table rows, evaluated on the sweep engine's pool. */
using RowJob = std::function<std::string()>;

std::string
row(const char *name, Tau t, Tau h, double paper_model,
    double paper_synopsys)
{
    double model = (t + h).inTau4();
    return csprintf("%-34s %9.1f %12.1f %12.1f %9s", name, model,
                    paper_model, paper_synopsys,
                    std::abs(model - paper_model) <= 0.1 ? "ok"
                                                         : "DIFF");
}

void
printRows(const std::vector<RowJob> &jobs)
{
    auto rows = exec::parallelMap(
        jobs, [](const RowJob &job) { return job(); });
    for (const auto &r : rows)
        std::printf("%s\n", r.c_str());
}

} // namespace

int
main()
{
    bench::banner("Table 1 - Parameterized delay equations",
                  "Module delays (t_i + h_i, in tau4) at p=5, w=32, "
                  "v=2; paper's model and\nSynopsys columns for "
                  "reference.  1 tau4 = 5 tau (EQ 3).");

    const int p = 5, w = 32, v = 2;

    std::printf("%-34s %9s %12s %12s %9s\n", "module", "ours",
                "paper-model", "paper-synop", "match");

    std::printf("-- wormhole router --\n");
    printRows({
        [=] { return row("switch arbiter (SB)", tSB(p), hSB(p), 9.6,
                         9.9); },
        [=] { return row("crossbar traversal (XB)", tXB(p, w),
                         hXB(p, w), 8.4, 10.5); },
    });

    std::printf("-- virtual-channel router --\n");
    printRows({
        [=] { return row("VC allocator (Rv)",
                         tVA(RoutingRange::Rv, p, v),
                         hVA(RoutingRange::Rv, p, v), 11.8, 11.0); },
        [=] { return row("VC allocator (Rp)",
                         tVA(RoutingRange::Rp, p, v),
                         hVA(RoutingRange::Rp, p, v), 13.1, 13.3); },
        [=] { return row("VC allocator (Rpv)",
                         tVA(RoutingRange::Rpv, p, v),
                         hVA(RoutingRange::Rpv, p, v), 16.9, 15.3); },
        [=] { return row("switch allocator (SL)", tSL(p, v),
                         hSL(p, v), 10.9, 12.0); },
    });

    std::printf("-- speculative virtual-channel router --\n");
    printRows({
        [=] { return row("combined VA+SS+CB (Rv)",
                         tSpecCombined(RoutingRange::Rv, p, v),
                         Tau(0.0), 14.6, 16.2); },
        [=] { return row("combined VA+SS+CB (Rp)",
                         tSpecCombined(RoutingRange::Rp, p, v),
                         Tau(0.0), 14.6, 16.2); },
        [=] { return row("combined VA+SS+CB (Rpv)",
                         tSpecCombined(RoutingRange::Rpv, p, v),
                         Tau(0.0), 18.3, 16.8); },
    });

    std::printf("\n-- logical-effort fundamentals --\n");
    le::Path fo4;
    fo4.add(le::inverter(), 4.0);
    std::printf("inverter driving 4 inverters: %.1f tau "
                "(paper: tau4 = 5 tau)\n", fo4.delay().value());

    std::printf("\n-- gate-level circuit reconstructions (tau4, "
                "validation bound ~2 tau4) --\n");
    std::printf("%-34s %9s %12s\n", "circuit", "circuit", "closed-form");
    std::printf("%-34s %9.1f %12.1f\n", "switch arbiter path (p=5)",
                le::switchArbiterPath(p).delay().inTau4(),
                tSB(p).inTau4());
    std::printf("%-34s %9.1f %12.1f\n", "crossbar path (p=5, w=32)",
                le::crossbarPath(p, w).delay().inTau4(),
                tXB(p, w).inTau4());
    std::printf("%-34s %9.1f %12.1f\n", "arbiter overhead path",
                le::arbiterOverheadPath().delay().inTau4(),
                hSB(p).inTau4());
    return 0;
}
