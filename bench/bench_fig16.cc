/**
 * @file
 * Figure 16 reproduction: the buffer-turnaround timeline.
 *
 * Two parts:
 *  1. The analytic timeline of one buffer slot's credit loop for each
 *     router model (the figure's narrative), from the pipeline
 *     position of switch allocation and the channel latencies.
 *  2. An empirical measurement: a saturated single-hop stream (k=2
 *     mesh, neighbor traffic, both directions disjoint) with B buffers
 *     sustains min(1, B / T_loop) flits/cycle, so the measured rate
 *     reveals the effective buffer turnaround T_loop per router model.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"

using namespace pdr;
using router::RouterModel;

namespace {

api::SimConfig
streamConfig(RouterModel model, int vcs, int buf, bool single_cycle,
             sim::Cycle credit_latency)
{
    api::SimConfig cfg;
    cfg.net.k = 2;
    cfg.net.router.model = model;
    cfg.net.router.singleCycle = single_cycle;
    cfg.net.router.numVcs = vcs;
    cfg.net.router.bufDepth = buf;
    cfg.net.creditLatency = credit_latency;
    cfg.net.pattern = traffic::PatternKind::Neighbor;
    cfg.net.injectionRate = 1.0;    // Saturate the injection port.
    cfg.net.warmup = 2000;
    cfg.net.samplePackets = 1;      // Protocol not used; fixed horizon.
    cfg.net.packetLength = 5;
    return cfg;
}

/**
 * Fixed-horizon evaluator for the sweep engine: ignore the measurement
 * protocol, run 22k cycles, report the accepted rate.
 */
api::SimResults
steadyRate(const api::SimConfig &cfg)
{
    net::Network network(cfg.net);
    network.run(22000);
    api::SimResults res;
    res.acceptedFraction = network.acceptedFraction();
    res.cycles = network.now();
    res.drained = true;
    return res;
}

void
timeline(const char *model, int sa_offset, int credit_prop)
{
    // One slot's life, t = downstream arrival of the flit using it.
    int grant = sa_offset;              // Downstream SA frees the slot.
    int credit_back = grant + credit_prop;
    int reuse_grant = credit_back + sa_offset;  // Upstream refill...
    std::printf("  %-22s arrival t+0 | freed (SA) t+%d | credit back "
                "t+%d | next flit in slot ~t+%d\n",
                model, grant, credit_back, reuse_grant + 2);
}

} // namespace

int
main()
{
    bench::banner("Figure 16 - buffer turnaround timeline",
                  "Longer pipelines hold buffers idle longer between "
                  "uses, cutting effective\nbuffering and throughput "
                  "(paper: turnaround 4 cycles WH/specVC, 5 VC, 2\n"
                  "single-cycle, with 1-cycle credit propagation).");

    std::printf("\nanalytic slot timeline (1-cycle links):\n");
    timeline("single-cycle", 1, 1);
    timeline("wormhole / specVC", 2, 1);
    timeline("VC (non-spec)", 2, 1);
    std::printf("  (VC head flits allocate at t+3: their credits "
                "return one cycle later\n   than wormhole/specVC -> "
                "the paper's 5-cycle turnaround)\n");

    std::printf("\nempirical: saturated 1-hop stream, delivered "
                "flits/node/cycle vs buffers B\n");
    std::printf("(rate = min(1, B / T_loop): the knee reveals the "
                "effective turnaround)\n\n");
    std::printf("%-24s", "B =");
    for (int b = 1; b <= 10; b++)
        std::printf(" %5d", b);
    std::printf("\n");

    struct Row
    {
        const char *label;
        RouterModel model;
        int vcs;
        bool single;
        sim::Cycle cp;
    };
    const Row rows[] = {
        {"single-cycle WH", RouterModel::Wormhole, 1, true, 1},
        {"wormhole", RouterModel::Wormhole, 1, false, 1},
        {"specVC (1 VC)", RouterModel::SpecVirtualChannel, 1, false, 1},
        {"VC (1 VC)", RouterModel::VirtualChannel, 1, false, 1},
        {"specVC, credit prop 4", RouterModel::SpecVirtualChannel, 1,
         false, 4},
    };

    // All (row, B) measurements as one parallel sweep, rows-major.
    std::vector<exec::SweepPoint> points;
    for (const auto &r : rows) {
        for (int b = 1; b <= 10; b++) {
            points.push_back({csprintf("%s/B=%d", r.label, b),
                              streamConfig(r.model, r.vcs, b, r.single,
                                           r.cp)});
        }
    }
    auto results = exec::SweepRunner().run(points, steadyRate);
    results.throwIfFailed();

    std::size_t idx = 0;
    for (const auto &r : rows) {
        std::printf("%-24s", r.label);
        for (int b = 1; b <= 10; b++) {
            const auto &p = results.points[idx++];
            // acceptedFraction is of uniform capacity; scale back to
            // flits/node/cycle for the figure's axis.
            std::printf(" %5.2f",
                        p.res.acceptedFraction * p.cfg.net.capacity());
        }
        std::printf("\n");
    }
    std::printf("(%zu runs on %d threads in %.1f s)\n",
                results.points.size(), results.threads,
                results.wallMs / 1000.0);
    std::printf("\nreading: with B=4, wormhole/specVC sustain ~B/loop;"
                " the non-spec VC router\nneeds one more buffer for "
                "the same rate; 4-cycle credit propagation (paper\n"
                "Fig 18) stretches the loop by 3 cycles.\n");
    return 0;
}
