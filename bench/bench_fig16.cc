/**
 * @file
 * Figure 16 reproduction: the buffer-turnaround timeline.
 *
 * Two parts:
 *  1. The analytic timeline of one buffer slot's credit loop for each
 *     router model (the figure's narrative), from the pipeline
 *     position of switch allocation and the channel latencies.
 *  2. An empirical measurement, declared in experiments/fig16.exp: a
 *     saturated single-hop stream (k=2 mesh, neighbor traffic, both
 *     directions disjoint) in fixed-horizon mode, swept over buffer
 *     depth B for five router variants.  A stream with B buffers
 *     sustains min(1, B / T_loop) flits/cycle, so the measured rate
 *     reveals the effective buffer turnaround T_loop per router model.
 *     `pdr sweep --file experiments/fig16.exp` runs the same grid.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"

using namespace pdr;

namespace {

void
timeline(const char *model, int sa_offset, int credit_prop)
{
    // One slot's life, t = downstream arrival of the flit using it.
    int grant = sa_offset;              // Downstream SA frees the slot.
    int credit_back = grant + credit_prop;
    int reuse_grant = credit_back + sa_offset;  // Upstream refill...
    std::printf("  %-22s arrival t+0 | freed (SA) t+%d | credit back "
                "t+%d | next flit in slot ~t+%d\n",
                model, grant, credit_back, reuse_grant + 2);
}

} // namespace

int
main()
{
    bench::banner("Figure 16 - buffer turnaround timeline",
                  "Longer pipelines hold buffers idle longer between "
                  "uses, cutting effective\nbuffering and throughput "
                  "(paper: turnaround 4 cycles WH/specVC, 5 VC, 2\n"
                  "single-cycle, with 1-cycle credit propagation).");

    std::printf("\nanalytic slot timeline (1-cycle links):\n");
    timeline("single-cycle", 1, 1);
    timeline("wormhole / specVC", 2, 1);
    timeline("VC (non-spec)", 2, 1);
    std::printf("  (VC head flits allocate at t+3: their credits "
                "return one cycle later\n   than wormhole/specVC -> "
                "the paper's 5-cycle turnaround)\n");

    std::printf("\nempirical: saturated 1-hop stream, delivered "
                "flits/node/cycle vs buffers B\n");
    std::printf("(rate = min(1, B / T_loop): the knee reveals the "
                "effective turnaround)\n\n");

    // The (router variant x buffer depth) grid is declared in
    // experiments/fig16.exp: curves = router variants, one sweep axis
    // over router.buf_depth, fixed-horizon mode.
    auto exp = bench::loadExperiment("fig16.exp");
    auto results = api::runSweep(exp.points());
    results.throwIfFailed();

    const auto &bufs = exp.axes.at(0).values;
    std::printf("%-24s", "B =");
    for (const auto &b : bufs)
        std::printf(" %5s", b.c_str());
    std::printf("\n");

    // Points are axis-major (buffer depth outer, curves inner).
    const std::size_t ncurves = exp.curves.size();
    for (std::size_t r = 0; r < ncurves; r++) {
        std::printf("%-24s", exp.curves[r].label.c_str());
        for (std::size_t b = 0; b < bufs.size(); b++) {
            const auto &p = results.points[b * ncurves + r];
            // acceptedFraction is of uniform capacity; scale back to
            // flits/node/cycle for the figure's axis.
            std::printf(" %5.2f",
                        p.res.acceptedFraction * p.cfg.net.capacity());
        }
        std::printf("\n");
    }
    std::printf("(%zu runs on %d threads in %.1f s)\n",
                results.points.size(), results.threads,
                results.wallMs / 1000.0);
    std::printf("\nreading: with B=4, wormhole/specVC sustain ~B/loop;"
                " the non-spec VC router\nneeds one more buffer for "
                "the same rate; 4-cycle credit propagation (paper\n"
                "Fig 18) stretches the loop by 3 cycles.\n");
    return 0;
}
