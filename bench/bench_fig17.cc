/**
 * @file
 * Figure 17 reproduction: realistically pipelined routers vs the
 * commonly assumed single-cycle ("unit latency") router model, 8
 * buffers per input port.
 *
 * Paper: single-cycle routers show ~16-cycle zero-load latency and 65%
 * saturation for VC flow control, vs 36/50% (VC) and 30/55% (specVC)
 * for the pipelined models: the unit-latency assumption underestimates
 * latency by ~56% and overestimates throughput by ~30%.
 */

#include "bench_util.hh"

using namespace pdr;
using router::RouterModel;

int
main()
{
    bench::banner("Figure 17 - pipelined vs single-cycle router model",
                  "8 buffers per input port.  Paper: unit-latency "
                  "models show 16-cycle zero-load\nand ~0.65 "
                  "saturation; pipelined models are substantially "
                  "slower.");
    bench::runAndPrintCurves({
        {"WH (8) pipelined",
         bench::routerConfig(RouterModel::Wormhole, 1, 8)},
        {"VC (2x4) pipelined",
         bench::routerConfig(RouterModel::VirtualChannel, 2, 4)},
        {"specVC (2x4) pipe",
         bench::routerConfig(RouterModel::SpecVirtualChannel, 2, 4)},
        {"WH (8) 1-cycle",
         bench::routerConfig(RouterModel::Wormhole, 1, 8, true)},
        {"VC (2x4) 1-cycle",
         bench::routerConfig(RouterModel::VirtualChannel, 2, 4, true)},
    });
    return 0;
}
