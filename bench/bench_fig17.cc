/**
 * @file
 * Figure 17 reproduction: realistically pipelined routers vs the
 * commonly assumed single-cycle ("unit latency") router model, 8
 * buffers per input port.
 *
 * The scenario is declared in experiments/fig17.exp; this bench loads
 * and prints it, and `pdr sweep --file experiments/fig17.exp` runs the
 * identical grid (same points, same seeds, same CSV).
 *
 * Paper: single-cycle routers show ~16-cycle zero-load latency and 65%
 * saturation for VC flow control, vs 36/50% (VC) and 30/55% (specVC)
 * for the pipelined models: the unit-latency assumption underestimates
 * latency by ~56% and overestimates throughput by ~30%.
 */

#include "bench_util.hh"

using namespace pdr;

int
main()
{
    bench::banner("Figure 17 - pipelined vs single-cycle router model",
                  "8 buffers per input port.  Paper: unit-latency "
                  "models show 16-cycle zero-load\nand ~0.65 "
                  "saturation; pipelined models are substantially "
                  "slower.");
    bench::runAndPrintExperiment(bench::loadExperiment("fig17.exp"));
    return 0;
}
