/**
 * @file
 * Figure 13 reproduction: latency-throughput of wormhole (8 buffers),
 * VC (2 VCs x 4 buffers) and speculative VC (2 VCs x 4 buffers) routers
 * on an 8x8 mesh under uniform traffic.
 *
 * The whole scenario is data: experiments/fig13.exp declares the base
 * config, the load grid and the three curves; this bench only loads
 * and prints it.  `pdr sweep --file experiments/fig13.exp` runs the
 * identical grid.
 *
 * Paper: zero-load 29 / 36 / 30 cycles; saturation 40% / 50% / 55% of
 * capacity.
 */

#include "bench_util.hh"

using namespace pdr;

int
main()
{
    bench::banner("Figure 13 - 8 buffers per input port",
                  "WH (8 bufs), VC (2vcsX4bufs), specVC (2vcsX4bufs); "
                  "8x8 mesh, uniform traffic,\n5-flit packets.  Paper: "
                  "zero-load 29/36/30 cycles; saturation 0.40/0.50/"
                  "0.55.");
    bench::runAndPrintExperiment(bench::loadExperiment("fig13.exp"));
    return 0;
}
