/**
 * @file
 * Figure 14 reproduction: latency-throughput with 16 buffers per input
 * port and 2 VCs per physical channel (8 buffers per VC).
 *
 * The whole scenario is data: experiments/fig14.exp declares the base
 * config, the load grid and the three curves; this bench only loads
 * and prints it.  `pdr sweep --file experiments/fig14.exp` runs the
 * identical grid.
 *
 * Paper: zero-load 29 / 35 / 29 cycles; saturation 50% / 65% / 70% --
 * the "40% over wormhole" headline configuration.
 */

#include "bench_util.hh"

using namespace pdr;

int
main()
{
    bench::banner("Figure 14 - 16 buffers per input port, 2 VCs",
                  "WH (16 bufs), VC (2vcsX8bufs), specVC (2vcsX8bufs)."
                  "  Paper: zero-load\n29/35/29 cycles; saturation "
                  "0.50/0.65/0.70 (specVC = WH latency, +40% tput).");
    bench::runAndPrintExperiment(bench::loadExperiment("fig14.exp"));
    return 0;
}
