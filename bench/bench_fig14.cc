/**
 * @file
 * Figure 14 reproduction: latency-throughput with 16 buffers per input
 * port and 2 VCs per physical channel (8 buffers per VC).
 *
 * Paper: zero-load 29 / 35 / 29 cycles; saturation 50% / 65% / 70% --
 * the "40% over wormhole" headline configuration.
 */

#include "bench_util.hh"

using namespace pdr;
using router::RouterModel;

int
main()
{
    bench::banner("Figure 14 - 16 buffers per input port, 2 VCs",
                  "WH (16 bufs), VC (2vcsX8bufs), specVC (2vcsX8bufs)."
                  "  Paper: zero-load\n29/35/29 cycles; saturation "
                  "0.50/0.65/0.70 (specVC = WH latency, +40% tput).");
    bench::runAndPrintCurves({
        {"WH (16 bufs)",
         bench::routerConfig(RouterModel::Wormhole, 1, 16)},
        {"VC (2x8)",
         bench::routerConfig(RouterModel::VirtualChannel, 2, 8)},
        {"specVC (2x8)",
         bench::routerConfig(RouterModel::SpecVirtualChannel, 2, 8)},
    });
    return 0;
}
