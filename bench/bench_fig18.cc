/**
 * @file
 * Figure 18 reproduction: effect of credit propagation latency on a
 * speculative VC router (2 VCs x 4 buffers).
 *
 * The scenario is declared in experiments/fig18.exp; this bench loads
 * and prints it, and `pdr sweep --file experiments/fig18.exp` runs the
 * identical grid (same points, same seeds, same CSV).
 *
 * Paper: raising credit propagation from 1 to 4 cycles (credit
 * turnaround 4 -> 7 cycles) cuts saturation throughput by 18%, from
 * 55% to 45% of capacity, while zero-load latency barely moves.
 */

#include "bench_util.hh"

using namespace pdr;

int
main()
{
    bench::banner("Figure 18 - credit propagation latency",
                  "specVC (2vcsX4bufs) with 1-cycle vs 4-cycle credit "
                  "propagation.  Paper:\nsaturation drops 0.55 -> 0.45 "
                  "(-18%).");
    bench::runAndPrintExperiment(bench::loadExperiment("fig18.exp"));
    return 0;
}
