/**
 * @file
 * Figure 18 reproduction: effect of credit propagation latency on a
 * speculative VC router (2 VCs x 4 buffers).
 *
 * Paper: raising credit propagation from 1 to 4 cycles (credit
 * turnaround 4 -> 7 cycles) cuts saturation throughput by 18%, from
 * 55% to 45% of capacity, while zero-load latency barely moves.
 */

#include "bench_util.hh"

using namespace pdr;
using router::RouterModel;

int
main()
{
    bench::banner("Figure 18 - credit propagation latency",
                  "specVC (2vcsX4bufs) with 1-cycle vs 4-cycle credit "
                  "propagation.  Paper:\nsaturation drops 0.55 -> 0.45 "
                  "(-18%).");
    auto cp1 = bench::routerConfig(RouterModel::SpecVirtualChannel, 2,
                                   4);
    auto cp4 = cp1;
    cp4.net.creditLatency = 4;
    bench::runAndPrintCurves({
        {"specVC cp=1", cp1},
        {"specVC cp=4", cp4},
    });
    return 0;
}
