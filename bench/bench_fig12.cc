/**
 * @file
 * Figure 12 reproduction: delay of the combined VA + speculative-SA
 * pipeline stage of a speculative VC router (in tau4), swept over v and
 * p for the three routing-function ranges Rv / Rp / Rpv.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "delay/equations.hh"
#include "exec/thread_pool.hh"

using namespace pdr;
using namespace pdr::delay;

int
main()
{
    bench::banner("Figure 12 - Combined VC & switch allocation delay",
                  "Delay (tau4) of the speculative router's combined "
                  "allocation stage vs the\nrouting-function range.  "
                  "20 tau4 = one typical clock cycle.");

    std::printf("%-14s %8s %8s %8s\n", "config", "R:v", "R:p", "R:pv");
    std::vector<std::pair<int, int>> grid;
    for (int p : {5, 7})
        for (int v : {2, 4, 8, 16, 32})
            grid.push_back({p, v});

    // Evaluate the grid on the sweep engine's pool, print in order.
    auto rows = exec::parallelMap(
        grid, [](const std::pair<int, int> &pv) {
            auto [p, v] = pv;
            return csprintf(
                "%2dvcs,%dpcs    %8.1f %8.1f %8.1f", v, p,
                tSpecCombined(RoutingRange::Rv, p, v).inTau4(),
                tSpecCombined(RoutingRange::Rp, p, v).inTau4(),
                tSpecCombined(RoutingRange::Rpv, p, v).inTau4());
        });
    for (const auto &row : rows)
        std::printf("%s\n", row.c_str());
    std::printf("\npaper anchor (2vcs,5pcs): 14.6 / 14.6 / 18.3 tau4\n");
    std::printf("values <= 20 tau4 fit the allocation stage in a "
                "single cycle, giving the\nspeculative router the same "
                "3-stage per-node latency as a wormhole router\n");
    return 0;
}
