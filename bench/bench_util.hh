/**
 * @file
 * Shared helpers for the reproduction benches: standard configurations,
 * the offered-load grid of the paper's figures, and table printing.
 *
 * Every bench prints the same rows/series as the corresponding table or
 * figure of Peh & Dally (HPCA 2001), with the paper's reported values
 * alongside where they are quoted in the text.
 *
 * Environment:
 *   PDR_PACKETS    sample-space size (default 30000; paper used 100000)
 *   PDR_WARMUP     warm-up cycles (default 10000, as in the paper)
 *   PDR_MAX_CYCLES simulation cycle cap for saturated points
 *   PDR_FAST=1     coarse load grid + small sample for smoke runs
 *   PDR_THREADS    sweep worker threads (default: hardware concurrency;
 *                  per-point results are independent of this)
 *   PDR_SWEEP_CSV  write the raw sweep results to this CSV file
 */

#ifndef PDR_BENCH_UTIL_HH
#define PDR_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "api/params.hh"
#include "api/simulation.hh"
#include "exec/sweep.hh"

namespace pdr::bench {

/** Print a bench banner. */
void banner(const std::string &title, const std::string &what);

/** The offered-load fractions used for latency-throughput curves. */
std::vector<double> loadGrid();

/** Base configuration matching the paper's Section-5 setup. */
api::SimConfig baseConfig();

/** Configure a router model. */
api::SimConfig routerConfig(router::RouterModel model, int vcs, int buf,
                            bool single_cycle = false);

/** A labelled latency-throughput curve. */
struct Curve
{
    std::string label;
    api::SimConfig cfg;
};

/**
 * Run every curve over the load grid -- all (load, curve) points in
 * parallel on the sweep engine -- and print a table: one row per
 * offered load, one latency column per curve ("sat" once the sample no
 * longer drains).  Also prints each curve's measured saturation knee
 * and the sweep wall-clock/thread summary.  With PDR_SWEEP_CSV set,
 * dumps the raw per-point results to that file.
 */
void runAndPrintCurves(const std::vector<Curve> &curves);

/** Write a sweep's raw results to $PDR_SWEEP_CSV, if set. */
void maybeExportCsv(const pdr::exec::SweepResults &results);

/**
 * Path of a shipped experiment file: $PDR_EXPERIMENTS_DIR (if set) or
 * the source tree's experiments/ directory compiled into the bench.
 */
std::string experimentFile(const std::string &name);

/** Load a shipped experiment and fold in the environment
 *  (PDR_FAST, PDR_PACKETS, ...), exactly as `pdr sweep` does. */
api::Experiment loadExperiment(const std::string &name);

/**
 * Run a single-load-axis experiment (e.g. fig13/fig18) and print the
 * same latency table as runAndPrintCurves.  The sweep points come from
 * Experiment::points(), so the PDR_SWEEP_CSV output is row-for-row
 * identical to `pdr sweep --file <experiment>`.
 */
void runAndPrintExperiment(const api::Experiment &exp);

} // namespace pdr::bench

#endif // PDR_BENCH_UTIL_HH
